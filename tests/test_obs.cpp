// Observability unit tests: histogram bucketing, registry merge algebra,
// trace span nesting across shard hops, and the Chrome trace_events
// export round-tripped through a minimal JSON parser.
//
// The whole suite compiles and passes in both configurations: with
// PAPM_OBS=ON it checks recorded values; with OFF it checks that the
// hooks are inert (empty logs, zero counters) — the kill-switch
// contract.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/flightrec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pm/pm_device.h"
#include "pm/pm_pool.h"
#include "sim/env.h"

namespace papm {
namespace {

// ---------- Histogram ----------

TEST(Histogram, BucketEdges) {
  using H = obs::Histogram;
  EXPECT_EQ(H::bucket_of(0), 0);
  EXPECT_EQ(H::bucket_of(1), 0);
  EXPECT_EQ(H::bucket_of(2), 1);
  EXPECT_EQ(H::bucket_of(3), 2);
  EXPECT_EQ(H::bucket_of(4), 2);
  EXPECT_EQ(H::bucket_of(5), 3);
  // Every bucket's upper edge maps into that bucket; one past maps out.
  for (int i = 1; i < 62; i++) {
    EXPECT_EQ(H::bucket_of(H::bucket_upper(i)), i) << i;
    EXPECT_EQ(H::bucket_of(H::bucket_upper(i) + 1), i + 1) << i;
  }
  EXPECT_EQ(H::bucket_of(~0ULL), 63);
}

TEST(Histogram, MomentsAndQuantiles) {
  obs::Histogram h;
  for (u64 v = 1; v <= 100; v++) h.observe(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // quantile_upper is the bucket's upper edge holding the nearest rank:
  // the median of 1..100 sits in bucket (32,64].
  EXPECT_EQ(h.quantile_upper(0.5), 64u);
  EXPECT_EQ(h.quantile_upper(1.0), 128u);
  EXPECT_EQ(obs::Histogram{}.quantile_upper(0.5), 0u);
}

// ---------- MetricRegistry ----------

TEST(MetricRegistry, MergeIsAssociativeAndCommutative) {
  // Three shard registries with overlapping and disjoint names.
  auto make = [](u64 a, u64 g, u64 extra) {
    auto r = std::make_unique<obs::MetricRegistry>();
    r->counter("shared.count").add(a);
    r->gauge("shared.peak").peak(g);
    r->histogram("shared.lat").observe(a * 10);
    if (extra != 0) r->counter("only.some").add(extra);
    return r;
  };
  const auto a = make(1, 5, 0);
  const auto b = make(2, 9, 7);
  const auto c = make(4, 3, 1);

  obs::MetricRegistry left;   // (a + b) + c
  left.merge_from(*a);
  left.merge_from(*b);
  left.merge_from(*c);
  obs::MetricRegistry right;  // c + (b + a)
  obs::MetricRegistry inner;
  inner.merge_from(*b);
  inner.merge_from(*a);
  right.merge_from(*c);
  right.merge_from(inner);

  EXPECT_EQ(left.report(), right.report());
  EXPECT_EQ(left.to_json(), right.to_json());
  EXPECT_EQ(left.counter("shared.count").value(), 7u);
  EXPECT_EQ(left.gauge("shared.peak").value(), 9u);   // max, not sum
  EXPECT_EQ(left.counter("only.some").value(), 8u);
  EXPECT_EQ(left.histogram("shared.lat").count(), 3u);
}

TEST(MetricRegistry, ResetKeepsRegistrationsValid) {
  obs::MetricRegistry r;
  obs::Counter* c = &r.counter("x.count");
  obs::Histogram* h = &r.histogram("x.lat");
  obs::inc(c, 5);
  obs::observe(h, 100);
  r.reset_values();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  obs::inc(c, 2);  // cached pointer still the registered instance
  EXPECT_EQ(r.counter("x.count").value(), obs::kEnabled ? 2u : 0u);
}

TEST(MetricRegistry, HooksAreInertWhenDisabledOrNull) {
  obs::inc(nullptr);  // must not crash
  obs::peak(nullptr, 3);
  obs::observe(nullptr, 3);
  obs::MetricRegistry r;
  obs::Counter* c = &r.counter("n");
  obs::inc(c, 4);
  EXPECT_EQ(c->value(), obs::kEnabled ? 4u : 0u);
}

// ---------- TraceContext / TraceLog ----------

TEST(Trace, SpansNestAndCloseAcrossShardHops) {
  sim::Env env;
  obs::TraceLog log0, log1;
  log0.set_track(0);
  log1.set_track(1);

  // Request 7 starts on shard 0: an outer rx span with a nested parse.
  obs::TraceContext t0(env, &log0, 7);
  SimTime outer_t0 = env.now();
  {
    auto outer = t0.span(obs::Stage::rx);
    env.clock().advance(100);
    {
      auto inner = t0.span(obs::Stage::parse);
      env.clock().advance(50);
    }  // inner closes first
    env.clock().advance(25);
  }

  // The request hops to shard 1 (e.g. a cross-shard GET): a new context
  // with the SAME request id records into that shard's log.
  obs::TraceContext t1(env, &log1, 7);
  {
    auto persist = t1.span(obs::Stage::persist);
    env.clock().advance(200);
  }

  if (!obs::kEnabled) {
    EXPECT_EQ(log0.size(), 0u);
    EXPECT_EQ(log1.size(), 0u);
    return;
  }
  ASSERT_EQ(log0.size(), 2u);
  ASSERT_EQ(log1.size(), 1u);

  // Inner closed before outer, so it appears first; containment holds.
  const auto& inner_ev = log0.events()[0];
  const auto& outer_ev = log0.events()[1];
  EXPECT_EQ(inner_ev.stage, obs::Stage::parse);
  EXPECT_EQ(outer_ev.stage, obs::Stage::rx);
  EXPECT_EQ(outer_ev.ts, outer_t0);
  EXPECT_EQ(outer_ev.dur, 175u);
  EXPECT_GE(inner_ev.ts, outer_ev.ts);
  EXPECT_LE(inner_ev.ts + inner_ev.dur, outer_ev.ts + outer_ev.dur);

  // Merge is concatenation; attribution counts the request once even
  // though its spans live in two shard logs.
  obs::TraceLog merged;
  merged.merge_from(log0);
  merged.merge_from(log1);
  const obs::Attribution at = obs::attribute(merged);
  EXPECT_EQ(at.requests, 1u);
  EXPECT_EQ(at.total_ns[static_cast<int>(obs::Stage::persist)], 200u);
  EXPECT_EQ(at.spans[static_cast<int>(obs::Stage::rx)], 1u);
  EXPECT_DOUBLE_EQ(at.mean_ns(obs::Stage::parse), 50.0);

  // Null-log contexts swallow everything.
  obs::TraceContext none;
  auto s = none.span(obs::Stage::tx);
  s.close();
  EXPECT_FALSE(none.active());
}

// ---------- Chrome trace JSON round-trip ----------

// Minimal JSON scanner: validates bracket/brace balance and string
// escapes, and extracts every object's name/ph/tid/ts/dur/req fields.
// Deliberately tiny — just enough structure checking to prove the export
// is well-formed without a JSON library.
struct MiniEvent {
  std::string name;
  std::string ph;
  u32 tid = 0;
  double ts = 0;
  double dur = 0;
  u64 req = 0;
};

class MiniParser {
 public:
  explicit MiniParser(std::string_view s) : s_(s) {}

  // Returns false on any structural error.
  bool parse(std::vector<MiniEvent>& out) {
    int depth = 0;
    MiniEvent cur;
    bool in_event = false;
    while (pos_ < s_.size()) {
      skip_ws();
      if (pos_ >= s_.size()) break;
      const char c = s_[pos_];
      if (c == '{' || c == '[') {
        depth++;
        pos_++;
        if (c == '{' && depth == 3) {  // {root {traceEvents [ {event...
          cur = MiniEvent{};
          in_event = true;
        }
      } else if (c == '}' || c == ']') {
        if (depth == 0) return false;
        if (c == '}' && depth == 3 && in_event) {
          out.push_back(cur);
          in_event = false;
        }
        depth--;
        pos_++;
      } else if (c == '"') {
        std::string key;
        if (!string_lit(key)) return false;
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == ':') {
          pos_++;
          skip_ws();
          if (!value(key, cur, in_event)) return false;
        }
      } else if (c == ',' || c == ':') {
        pos_++;
      } else {
        return false;
      }
    }
    return depth == 0;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      pos_++;
    }
  }
  bool string_lit(std::string& out) {
    if (s_[pos_] != '"') return false;
    pos_++;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') pos_++;  // escape: take next char verbatim
      if (pos_ >= s_.size()) return false;
      out += s_[pos_++];
    }
    if (pos_ >= s_.size()) return false;
    pos_++;  // closing quote
    return true;
  }
  bool value(const std::string& key, MiniEvent& cur, bool in_event) {
    if (pos_ >= s_.size()) return false;
    if (s_[pos_] == '"') {
      std::string v;
      if (!string_lit(v)) return false;
      if (in_event && key == "name") cur.name = v;
      if (in_event && key == "ph") cur.ph = v;
      return true;
    }
    if (s_[pos_] == '{' || s_[pos_] == '[') return true;  // handled by loop
    // Number.
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == '-' || s_[pos_] == '+' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      pos_++;
    }
    if (pos_ == start) return false;
    const double num = std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(), nullptr);
    if (in_event) {
      if (key == "tid") cur.tid = static_cast<u32>(num);
      if (key == "ts") cur.ts = num;
      if (key == "dur") cur.dur = num;
      if (key == "req") cur.req = static_cast<u64>(num);
    }
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

TEST(Trace, ChromeJsonRoundTripsThroughMinimalParser) {
  sim::Env env;
  obs::TraceLog server, client;
  server.set_track(0);
  client.set_track(obs::kClientTrack);

  server.record(1, obs::Stage::rx, 1000, 500);
  server.record(1, obs::Stage::persist, 1500, 2500);
  client.record(1, obs::Stage::rtt, 0, 5000);
  server.record(2, obs::Stage::rx, 6000, 321);

  obs::TraceLog merged;
  merged.merge_from(server);
  merged.merge_from(client);
  const std::string json = obs::chrome_trace_json(merged);

  std::vector<MiniEvent> evs;
  ASSERT_TRUE(MiniParser(json).parse(evs)) << json;

  if (!obs::kEnabled) {
    for (const auto& e : evs) EXPECT_EQ(e.ph, "M");  // no spans recorded
    return;
  }
  // 4 metadata events (process_name + thread_name per distinct pid:
  // papm-server and papm-client) + 4 "X" spans, sorted by timestamp.
  std::vector<MiniEvent> xs, ms;
  for (const auto& e : evs) (e.ph == "X" ? xs : ms).push_back(e);
  ASSERT_EQ(ms.size(), 4u);
  ASSERT_EQ(xs.size(), 4u);

  // MiniParser reads the args object's "name" into cur.name, so for "M"
  // events the extracted name is the label Perfetto will display.
  EXPECT_EQ(ms[0].name, "papm-server");  // process_name, pid 1
  EXPECT_EQ(ms[1].name, "papm-client");  // process_name, pid 2
  EXPECT_EQ(ms[2].name, "shard0");       // thread_name, tid 0
  EXPECT_EQ(ms[3].name, "client0");      // thread_name, tid kClientTrack
  EXPECT_EQ(ms[3].tid, obs::kClientTrack);

  EXPECT_EQ(xs[0].name, "rtt");
  EXPECT_EQ(xs[0].tid, obs::kClientTrack);
  EXPECT_DOUBLE_EQ(xs[0].ts, 0.0);
  EXPECT_DOUBLE_EQ(xs[0].dur, 5.0);  // 5000 ns = 5 us
  EXPECT_EQ(xs[1].name, "rx");
  EXPECT_DOUBLE_EQ(xs[1].ts, 1.0);
  EXPECT_DOUBLE_EQ(xs[1].dur, 0.5);
  EXPECT_EQ(xs[2].name, "persist");
  EXPECT_DOUBLE_EQ(xs[2].dur, 2.5);
  EXPECT_EQ(xs[3].name, "rx");
  EXPECT_EQ(xs[3].req, 2u);
  EXPECT_DOUBLE_EQ(xs[3].dur, 0.321);
}

// ---------- TraceLog ring capacity & drop accounting ----------

TEST(Trace, RingCapacityCountsDropsAndKeepsNewest) {
  obs::TraceLog log;
  log.set_track(3);
  log.set_capacity(4);
  obs::MetricRegistry reg;
  obs::Counter* c = &reg.counter("obs.trace_dropped");
  log.set_dropped_counter(c);
  for (u64 i = 1; i <= 10; i++) log.record(i, obs::Stage::rx, i * 10, 1);
  if (!obs::kEnabled) {
    EXPECT_EQ(log.size(), 0u);
    EXPECT_EQ(log.dropped(), 0u);
    return;
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.dropped(), 6u);   // every overwrite counted — never silent
  EXPECT_EQ(c->value(), 6u);      // and mirrored into the registry counter
  std::set<u64> reqs;
  for (const auto& e : log.events()) reqs.insert(e.req);
  EXPECT_EQ(reqs, (std::set<u64>{7, 8, 9, 10}));  // newest survive

  // merge_from carries the drop count into the export-side scratch log.
  obs::TraceLog merged;
  merged.merge_from(log);
  EXPECT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged.dropped(), 6u);

  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
  log.record(99, obs::Stage::tx, 0, 1);  // ring cursor reset with it
  EXPECT_EQ(log.events()[0].req, 99u);
}

// ---------- FlightRecorder ----------

obs::FlightRecord flight_of(u64 seq) {
  obs::FlightRecord r;
  r.req = 500 + seq;
  r.t0_ns = seq * 7;
  for (std::size_t s = 0; s < obs::kStages; s++) {
    r.stage_ns[s] = static_cast<u32>(seq * 10 + s);
  }
  r.result = 200;
  r.op = 'G';
  return r;
}

TEST(FlightRecorder, AppendRecoverScanRoundTrip) {
  sim::Env env;
  pm::PmDevice dev(env, 1u << 20);
  auto pool = pm::PmPool::create(dev, "p", dev.data_base(), 1u << 19);
  auto made = obs::FlightRecorder::create(dev, pool, 0, 8);
  ASSERT_TRUE(made.ok());
  obs::FlightRecorder fr = std::move(made.value());
  obs::MetricRegistry reg;
  fr.set_metrics(&reg);
  for (u64 i = 1; i <= 5; i++) EXPECT_EQ(fr.append(flight_of(i)), i);
  EXPECT_EQ(fr.seq(), 5u);
  EXPECT_EQ(fr.wraps(), 0u);
  EXPECT_EQ(reg.counter("obs.flightrec_records").value(),
            obs::kEnabled ? 5u : 0u);

  dev.crash();
  auto rec = obs::FlightRecorder::recover(dev, 0);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().seq(), 5u);  // resumes past the high-water mark
  obs::FlightRecorder::ScanStats st;
  const auto flights = rec.value().scan(&st);
  ASSERT_EQ(flights.size(), 5u);
  EXPECT_EQ(st.scanned, 8u);
  EXPECT_EQ(st.valid, 5u);
  EXPECT_EQ(st.invalid, 0u);
  EXPECT_EQ(st.max_seq, 5u);
  EXPECT_TRUE(st.contiguous);
  for (u64 i = 0; i < 5; i++) {
    EXPECT_EQ(flights[i].seq, i + 1);
    const obs::FlightRecord want = flight_of(i + 1);
    EXPECT_EQ(flights[i].rec.req, want.req);
    EXPECT_EQ(flights[i].rec.t0_ns, want.t0_ns);
    EXPECT_EQ(0, std::memcmp(flights[i].rec.stage_ns, want.stage_ns,
                             sizeof want.stage_ns));
    EXPECT_EQ(flights[i].rec.result, want.result);
    EXPECT_EQ(flights[i].rec.op, want.op);
  }
  EXPECT_EQ(rec.value().append(flight_of(6)), 6u);
}

TEST(FlightRecorder, WrapKeepsNewestWindow) {
  sim::Env env;
  pm::PmDevice dev(env, 1u << 20);
  auto pool = pm::PmPool::create(dev, "p", dev.data_base(), 1u << 19);
  auto made = obs::FlightRecorder::create(dev, pool, 0, 4);
  ASSERT_TRUE(made.ok());
  obs::FlightRecorder fr = std::move(made.value());
  obs::MetricRegistry reg;
  fr.set_metrics(&reg);
  for (u64 i = 1; i <= 10; i++) fr.append(flight_of(i));
  EXPECT_EQ(fr.wraps(), 6u);
  EXPECT_EQ(reg.counter("obs.flightrec_wraps").value(),
            obs::kEnabled ? 6u : 0u);

  obs::FlightRecorder::ScanStats st;
  const auto flights = fr.scan(&st);
  ASSERT_EQ(flights.size(), 4u);
  EXPECT_TRUE(st.contiguous);
  for (u64 i = 0; i < 4; i++) EXPECT_EQ(flights[i].seq, 7 + i);
}

TEST(FlightRecorder, CorruptedBodyIsRejectedNotResurrected) {
  sim::Env env;
  pm::PmDevice dev(env, 1u << 20);
  auto pool = pm::PmPool::create(dev, "p", dev.data_base(), 1u << 19);
  auto made = obs::FlightRecorder::create(dev, pool, 0, 4);
  ASSERT_TRUE(made.ok());
  obs::FlightRecorder fr = std::move(made.value());
  for (u64 i = 1; i <= 3; i++) fr.append(flight_of(i));

  // Smash 8 bytes of seq 2's body (slot index 1) behind the CRC's back.
  const u64 body = fr.region() + obs::FlightRecorder::kHeaderLen +
                   1 * obs::FlightRecorder::kSlotSize + 8;
  dev.store_u64(body, 0xdeadbeefdeadbeefull);
  dev.persist(body, 8);

  obs::FlightRecorder::ScanStats st;
  const auto flights = fr.scan(&st);
  ASSERT_EQ(flights.size(), 2u);
  EXPECT_EQ(st.valid, 2u);
  EXPECT_EQ(st.invalid, 1u);      // the torn slot is counted, not returned
  EXPECT_FALSE(st.contiguous);    // 1 and 3 survive, 2 is the hole
  EXPECT_EQ(flights[0].seq, 1u);
  EXPECT_EQ(flights[1].seq, 3u);

  // The CRC binds body to seq: the same record under a different seq
  // must not verify (the ring-reuse hazard).
  const obs::FlightRecord r = flight_of(1);
  EXPECT_NE(obs::FlightRecorder::record_crc(r, 1),
            obs::FlightRecorder::record_crc(r, 2));
}

TEST(FlightRecorder, RecoverUnknownShardFails) {
  sim::Env env;
  pm::PmDevice dev(env, 1u << 20);
  auto rec = obs::FlightRecorder::recover(dev, 9);
  EXPECT_FALSE(rec.ok());
}

// ---------- PmDevice flush accounting ----------

TEST(PmObs, EpochAndRegistryAgreeOnFlushCounts) {
  sim::Env env;
  pm::PmDevice dev(env, 1u << 20);
  obs::MetricRegistry reg;
  dev.set_metrics(&reg);
  dev.obs_begin_epoch();

  std::vector<u8> data(3 * kCacheLine, 0xAB);
  const u64 at = dev.data_base();
  dev.store(at, data);
  dev.persist(at, data.size());

  const auto ep = dev.obs_epoch();
  if (!obs::kEnabled) {
    EXPECT_EQ(ep.clwb, 0u);
    return;
  }
  EXPECT_GE(ep.clwb, 3u);  // at least the three data lines
  EXPECT_GE(ep.sfence, 1u);
  EXPECT_EQ(ep.bytes_flushed, ep.lines_drained * kCacheLine);
  EXPECT_GE(ep.dirty_hwm, 3u);
  EXPECT_GE(ep.pending_hwm, 1u);
  // The registry counters saw the same events.
  EXPECT_EQ(reg.counter("pm.clwb").value(), ep.clwb);
  EXPECT_EQ(reg.counter("pm.sfence").value(), ep.sfence);
  EXPECT_EQ(reg.counter("pm.bytes_flushed").value(), ep.bytes_flushed);

  // A new epoch rewinds the window, not the registry.
  dev.obs_begin_epoch();
  EXPECT_EQ(dev.obs_epoch().clwb, 0u);
  EXPECT_EQ(reg.counter("pm.clwb").value(), ep.clwb);
}

}  // namespace
}  // namespace papm
