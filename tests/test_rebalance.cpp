// RSS indirection-table rebalancing: remap determinism, flow-group
// migration correctness (per-flow FIFO, zero acked-write loss, epoch
// safety), and the open-loop harness that drives it.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "app/harness.h"
#include "app/rebalance.h"
#include "app/server.h"
#include "http/http.h"
#include "nic/fabric.h"

using namespace papm;
using namespace papm::app;

namespace {

// Two-machine testbed with a multi-shard server, plus one raw client
// connection whose responses are collected in arrival order — the
// instrument for observing per-flow FIFO across a migration.
struct Testbed {
  sim::Env env;
  nic::Fabric fabric{env};
  Host server;
  Host client;
  KvServer srv;
  net::TcpConn* conn = nullptr;
  http::ResponseParser parser;
  std::vector<http::Response> responses;

  explicit Testbed(const ServerConfig& sc, int server_cores = 4)
      : server(env, fabric, server_cfg(server_cores)),
        client(env, fabric, client_cfg()),
        srv(server, sc) {
    conn = client.stack().connect(2, 9000);
    conn->on_readable = [this](net::TcpConn& c) {
      std::vector<u8> buf(8192);
      std::size_t n;
      while ((n = c.read(buf)) > 0) {
        // One read may carry several pipelined responses; the parser
        // buffers leftovers, so drain it with empty feeds.
        auto r = parser.feed(std::span<const u8>(buf.data(), n));
        while (r.has_value()) {
          responses.push_back(std::move(*r));
          r = parser.feed({});
        }
      }
    };
    env.engine.run_until_idle();
  }

  static HostConfig server_cfg(int cores) {
    HostConfig c;
    c.ip = 2;
    c.cores = cores;
    c.busy_poll = true;
    c.pm_backed = true;
    c.pm_size = 256u << 20;
    return c;
  }
  static HostConfig client_cfg() {
    HostConfig c;
    c.ip = 1;
    c.cores = 0;
    return c;
  }

  // The indirection-table bucket (and current queue) this connection's
  // frames hit on the *server* NIC: src = client, dst = server.
  [[nodiscard]] u32 bucket() const {
    return nic::Nic::rss_bucket_of(
        nic::rss_toeplitz(1, 2, conn->local_port(), 9000));
  }
  [[nodiscard]] u32 queue() { return server.nic().indirection(bucket()); }

  void send(http::Method m, std::string target, std::vector<u8> body = {}) {
    http::Request req;
    req.method = m;
    req.target = std::move(target);
    req.body = std::move(body);
    (void)conn->send(http::serialize(req));
  }
  // Send and run to completion (non-pipelined).
  const http::Response& request(http::Method m, std::string target,
                                std::vector<u8> body = {}) {
    const std::size_t before = responses.size();
    send(m, std::move(target), std::move(body));
    env.engine.run_until_idle();
    EXPECT_EQ(responses.size(), before + 1);
    return responses.back();
  }
};

std::vector<u8> body_for(int i) {
  return std::vector<u8>(64 + static_cast<std::size_t>(i) * 7,
                         static_cast<u8>('a' + i));
}

}  // namespace

// --- Indirection table unit behavior ---------------------------------------

TEST(Indirection, DefaultTableMatchesModuloSteering) {
  ServerConfig sc;
  sc.backend = Backend::pktstore;
  Testbed t(sc, /*server_cores=*/4);
  nic::Nic& nic = t.server.nic();
  for (u32 b = 0; b < nic::Nic::kIndirEntries; b++) {
    EXPECT_EQ(nic.indirection(b), b % 4u);
  }
  // Two-step steering: rx_queue_for goes through the table.
  const u32 hash = nic::rss_toeplitz(1, 2, 40000, 9000);
  EXPECT_EQ(nic.rx_queue_for(1, 2, 40000, 9000),
            nic.indirection(nic::Nic::rss_bucket_of(hash)));
}

TEST(Indirection, RemapIsDeterministicClampedAndCounted) {
  ServerConfig sc;
  sc.backend = Backend::pktstore;
  Testbed t(sc, /*server_cores=*/4);
  nic::Nic& nic = t.server.nic();
  EXPECT_EQ(nic.indir_remaps(), 0u);

  // Default entry for bucket 7 is 7 % 4 == 3; remap it elsewhere.
  nic.set_indirection(7, 2);
  EXPECT_EQ(nic.indirection(7), 2u);
  EXPECT_EQ(nic.indir_remaps(), 1u);
  // Re-setting the same mapping is a no-op, not a remap.
  nic.set_indirection(7, 2);
  EXPECT_EQ(nic.indir_remaps(), 1u);
  // Out-of-range queue clamps to the last real queue (bucket 9's default
  // is 1, so this counts as a remap).
  nic.set_indirection(9, 99);
  EXPECT_EQ(nic.indirection(9), 3u);
  EXPECT_EQ(nic.indir_remaps(), 2u);
  // Bucket index wraps modulo the table size (entry 5's default is 1).
  nic.set_indirection(nic::Nic::kIndirEntries + 5, 2);
  EXPECT_EQ(nic.indirection(5), 2u);
}

// --- Flow-group migration correctness --------------------------------------

// Migrating a connection's flow group mid-pipeline must preserve per-flow
// FIFO ordering and lose no acknowledged write: values PUT before the
// migration (stored on the source shard) read back byte-identical through
// the destination shard afterwards.
TEST(Migration, PreservesFifoAndAckedWrites) {
  ServerConfig sc;
  sc.backend = Backend::pktstore;
  Testbed t(sc);
  Rebalancer rebal(t.server, t.srv);

  const u32 from = t.queue();
  const u32 to = (from + 1) % 4;
  ASSERT_EQ(t.server.stack(from).conn_count(), 1u);

  // Acked writes on the source shard.
  constexpr int kKeys = 8;
  for (int i = 0; i < kKeys; i++) {
    const auto& r =
        t.request(http::Method::put, "/kv/mig" + std::to_string(i), body_for(i));
    ASSERT_EQ(r.status, 201);
  }

  // Pipeline GETs for every key, then fire the migration while their
  // frames and responses are in flight.
  t.responses.clear();
  for (int i = 0; i < kKeys; i++) {
    t.send(http::Method::get, "/kv/mig" + std::to_string(i));
  }
  t.env.engine.schedule_in(5'000, [&] { rebal.migrate_bucket(t.bucket(), from, to); });
  t.env.engine.run_until_idle();

  // The connection now lives on the destination stack...
  EXPECT_EQ(t.server.stack(from).conn_count(), 0u);
  EXPECT_EQ(t.server.stack(to).conn_count(), 1u);
  EXPECT_EQ(t.server.nic().indirection(t.bucket()), to);
  EXPECT_EQ(rebal.bucket_moves(), 1u);
  EXPECT_EQ(rebal.conns_moved(), 1u);

  // ...and every response arrived, in request order, byte-identical.
  ASSERT_EQ(t.responses.size(), static_cast<std::size_t>(kKeys));
  for (int i = 0; i < kKeys; i++) {
    EXPECT_EQ(t.responses[i].status, 200) << "key mig" << i;
    EXPECT_EQ(t.responses[i].body, body_for(i)) << "key mig" << i;
  }
  EXPECT_EQ(t.srv.errors(), 0u);

  // New writes after the migration land on the new shard and read back.
  const auto& w = t.request(http::Method::put, "/kv/post", body_for(3));
  ASSERT_EQ(w.status, 201);
  const auto& g = t.request(http::Method::get, "/kv/post");
  EXPECT_EQ(g.status, 200);
  EXPECT_EQ(g.body, body_for(3));
}

// Same scenario under group/epoch commit: the migration must first close
// the source shard's open epoch so deferred publications and held acks
// drain — nothing may be stranded on the old core.
TEST(Migration, DrainsOpenGroupCommitEpoch) {
  ServerConfig sc;
  sc.backend = Backend::pktstore;
  sc.knobs.group_commit.enabled = true;
  sc.knobs.group_commit.max_epoch_ops = 64;
  // Deadlines far beyond the test horizon: only migrate_bucket's
  // close_epoch (or the idle-drain check) can release held acks.
  sc.knobs.group_commit.max_deferral_ns = 500 * kNsPerMs;
  Testbed t(sc);
  Rebalancer rebal(t.server, t.srv);

  const u32 from = t.queue();
  const u32 to = (from + 1) % 4;

  // Pipeline a burst of PUTs (they join one open epoch on the source
  // shard; acks are deferred) and migrate while it is in flight.
  constexpr int kKeys = 6;
  for (int i = 0; i < kKeys; i++) {
    t.send(http::Method::put, "/kv/ep" + std::to_string(i), body_for(i));
  }
  t.env.engine.schedule_in(5'000, [&] { rebal.migrate_bucket(t.bucket(), from, to); });
  t.env.engine.run_until_idle();

  // Every deferred ack arrived in order; none stranded on the old shard.
  ASSERT_EQ(t.responses.size(), static_cast<std::size_t>(kKeys));
  for (int i = 0; i < kKeys; i++) EXPECT_EQ(t.responses[i].status, 201);
  EXPECT_EQ(t.srv.errors(), 0u);

  // The writes are durable and visible through the destination shard.
  for (int i = 0; i < kKeys; i++) {
    const auto& g = t.request(http::Method::get, "/kv/ep" + std::to_string(i));
    EXPECT_EQ(g.status, 200);
    EXPECT_EQ(g.body, body_for(i));
  }
}

// A migration to the queue the group already lives on is a no-op.
TEST(Migration, SameQueueIsNoOp) {
  ServerConfig sc;
  sc.backend = Backend::pktstore;
  Testbed t(sc);
  Rebalancer rebal(t.server, t.srv);
  const u32 q = t.queue();
  rebal.migrate_bucket(t.bucket(), q, q);
  t.env.engine.run_until_idle();
  EXPECT_EQ(rebal.conns_moved(), 0u);
  EXPECT_EQ(t.server.stack(q).conn_count(), 1u);
  const auto& r = t.request(http::Method::put, "/kv/noop", body_for(1));
  EXPECT_EQ(r.status, 201);
}

// --- Rebalancer policy + harness integration -------------------------------

// With few connections the static Toeplitz spread is lumpy; the monitor
// must detect it, move buckets, and end the run no more imbalanced than
// the static table left it.
TEST(Rebalance, MonitorReducesImbalance) {
  RunConfig cfg;
  cfg.backend = Backend::pktstore;
  cfg.server_cores = 4;
  cfg.connections = 25;
  cfg.pm_size = 1u << 30;
  cfg.keyspace = 2048;
  cfg.warmup_ns = 10 * kNsPerMs;
  cfg.measure_ns = 40 * kNsPerMs;

  const RunResult base = run_experiment(cfg);

  cfg.rebalance = true;
  cfg.rebalance_cfg.trigger_ratio = 1.05;
  cfg.rebalance_cfg.min_frames_per_round = 64;
  const RunResult rebal = run_experiment(cfg);

  EXPECT_GT(rebal.bucket_moves, 0u);
  EXPECT_GT(rebal.conns_migrated, 0u);
  EXPECT_LE(rebal.imbalance, base.imbalance);
  EXPECT_EQ(rebal.server_errors, 0u);
  // Migration must not cost throughput beyond noise.
  EXPECT_GT(rebal.kreq_per_s, base.kreq_per_s * 0.9);
}

TEST(Rebalance, RunIsDeterministicForSeed) {
  RunConfig cfg;
  cfg.backend = Backend::pktstore;
  cfg.server_cores = 4;
  cfg.connections = 25;
  cfg.pm_size = 1u << 30;
  cfg.keyspace = 2048;
  cfg.warmup_ns = 5 * kNsPerMs;
  cfg.measure_ns = 20 * kNsPerMs;
  cfg.rebalance = true;
  cfg.rebalance_cfg.trigger_ratio = 1.05;
  cfg.rebalance_cfg.min_frames_per_round = 64;

  const RunResult a = run_experiment(cfg);
  const RunResult b = run_experiment(cfg);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.bucket_moves, b.bucket_moves);
  EXPECT_EQ(a.conns_migrated, b.conns_migrated);
  EXPECT_DOUBLE_EQ(a.imbalance, b.imbalance);
  EXPECT_DOUBLE_EQ(a.rtt.mean(), b.rtt.mean());
}

// --- Open-loop harness ------------------------------------------------------

namespace {
OpenLoopRunConfig openloop_cfg() {
  OpenLoopRunConfig cfg;
  cfg.backend = Backend::pktstore;
  cfg.server_cores = 2;
  cfg.pm_size = 512u << 20;
  cfg.connections = 200;
  cfg.rate_rps = 50'000;
  cfg.value_size = 256;
  cfg.keyspace = 2048;
  cfg.warmup_ns = 10 * kNsPerMs;
  cfg.measure_ns = 30 * kNsPerMs;
  return cfg;
}
}  // namespace

TEST(OpenLoop, DeterministicForSeed) {
  const OpenLoopRunConfig cfg = openloop_cfg();
  const OpenLoopResult a = run_openloop(cfg);
  const OpenLoopResult b = run_openloop(cfg);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_DOUBLE_EQ(a.sojourn.mean(), b.sojourn.mean());
  EXPECT_DOUBLE_EQ(a.p999_us(), b.p999_us());
}

TEST(OpenLoop, OffersTheConfiguredLoadAndCountsMisses) {
  OpenLoopRunConfig cfg = openloop_cfg();
  const OpenLoopResult r = run_openloop(cfg);
  ASSERT_GT(r.completed, 0u);
  // Offered load within 10% of configured (Poisson noise + edges).
  EXPECT_NEAR(r.offered_krps, cfg.rate_rps / 1000.0, cfg.rate_rps / 10'000.0);
  // At this modest load nothing should blow a 1 ms deadline...
  EXPECT_EQ(r.deadline_misses, 0u);
  EXPECT_EQ(r.errors, 0u);

  // ...while an absurdly tight deadline marks every completion a miss.
  cfg.deadline_ns = 1;  // 1 ns
  const OpenLoopResult tight = run_openloop(cfg);
  ASSERT_GT(tight.completed, 0u);
  EXPECT_EQ(tight.deadline_misses, tight.completed);
  EXPECT_DOUBLE_EQ(tight.miss_rate, 1.0);
}
