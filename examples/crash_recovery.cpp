// crash_recovery: the §5.1 crash-consistency story, demonstrated.
//
// Repeatedly crashes a loaded packet-metadata store at random points and
// shows the invariant that makes it a storage system rather than a cache:
// every acknowledged write is fully recovered, checksums verify, and the
// allocator never corrupts (it may leak bounded space for in-flight
// operations — the documented leak-not-corrupt policy).
#include <cstdio>
#include <map>
#include <string>

#include "core/pktstore.h"

using namespace papm;

int main() {
  sim::Env env;
  constexpr u64 kPm = 128u << 20;
  pm::PmDevice dev(env, kPm);
  auto pmpool = pm::PmPool::create(dev, "pkts", dev.data_base(), kPm - 4096);
  pmpool.set_charges(env.cost.pool_alloc_ns, env.cost.pool_alloc_ns / 2);

  std::map<std::string, u32> acked;  // key -> value seed
  Rng rng(7);
  u64 seq = 0;

  auto make_value = [](u32 seed) {
    Rng r(seed);
    std::vector<u8> v(512 + r.next_below(1024));
    for (auto& b : v) b = static_cast<u8>(r.next());
    return v;
  };

  std::printf("crash/recover loop: 8 rounds of writes + power loss\n\n");
  for (int round = 0; round < 8; round++) {
    // (Re)open the store from the PM image.
    auto pool_r = pm::PmPool::recover(dev, "pkts");
    net::PmArena arena(dev, pool_r.value());
    net::PktBufPool pktpool(env, arena);

    core::PktStore store = [&] {
      if (round == 0) return core::PktStore::create(pktpool, "db");
      auto rec = core::PktStore::recover(pktpool, "db");
      if (!rec.ok()) {
        std::fprintf(stderr, "FATAL: recovery failed in round %d\n", round);
        std::exit(1);
      }
      return std::move(rec.value());
    }();

    // Validate everything acknowledged before the last crash.
    std::size_t verified = 0;
    for (const auto& [key, seed] : acked) {
      const auto got = store.get(key);
      if (!got.ok() || got.value() != make_value(seed)) {
        std::fprintf(stderr, "FATAL: lost or corrupted \"%s\"\n", key.c_str());
        return 1;
      }
      verified++;
    }

    // A burst of writes and deletes.
    const SimTime t0 = env.now();
    for (int i = 0; i < 120; i++) {
      const std::string key = "key" + std::to_string(rng.next_below(200));
      if (!acked.empty() && rng.chance(0.2)) {
        store.erase(key);
        acked.erase(key);
      } else {
        const u32 seed = static_cast<u32>(++seq);
        if (store.put_bytes(key, make_value(seed)).ok()) acked[key] = seed;
      }
    }
    std::printf(
        "round %d: recovered+verified %3zu keys, wrote burst in %6.1f us "
        "(sim), pool in use: %5.1f KiB\n",
        round, verified, static_cast<double>(env.now() - t0) / 1000.0,
        static_cast<double>(pool_r->allocated_bytes()) / 1024.0);

    dev.crash();  // power loss with the dirty lines still unflushed
  }

  std::printf("\nall rounds passed: no acknowledged write was ever lost.\n");
  return 0;
}
