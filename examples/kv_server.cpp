// kv_server: the paper's end-to-end scenario as a runnable example.
//
// Builds the §3 testbed — a single-core busy-polling PM server and a
// multi-connection wrk-like client over a simulated 25 GbE fabric — and
// serves 1 KB PUT/GET traffic with each backend in turn, printing the
// latency/throughput comparison that motivates the proposal.
//
// Usage: kv_server [connections] [value_bytes]
#include <cstdio>
#include <cstdlib>

#include "app/harness.h"

using namespace papm;
using namespace papm::app;

int main(int argc, char** argv) {
  const int conns = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::size_t value = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 1024;

  std::printf("kv_server: %d persistent connection(s), %zu-byte values,\n",
              conns, value);
  std::printf("mixed 80%% PUT / 20%% GET, single server core\n\n");
  std::printf("%-24s %10s %10s %14s %8s\n", "backend", "mean[us]", "p99[us]",
              "tput[kreq/s]", "cpu");

  for (const Backend b :
       {Backend::discard, Backend::raw_persist, Backend::lsm, Backend::pktstore}) {
    RunConfig cfg;
    cfg.backend = b;
    cfg.connections = conns;
    cfg.value_size = value;
    cfg.get_ratio = 0.2;
    cfg.keyspace = 512;
    cfg.warmup_ns = 10 * kNsPerMs;
    cfg.measure_ns = 80 * kNsPerMs;
    const auto r = run_experiment(cfg);
    std::printf("%-24s %10.1f %10.1f %14.1f %7.0f%%\n",
                std::string(to_string(b)).c_str(), r.mean_rtt_us(),
                r.p99_rtt_us(), r.kreq_per_s, r.server_cpu_util * 100.0);
  }

  std::printf(
      "\ndiscard measures pure networking; raw_persist adds copy+flush;\n"
      "lsm is the NoveLSM-like baseline with full data management; and\n"
      "pktstore is the paper's proposal reusing the packets themselves.\n");
  return 0;
}
