// file_server: the §4.2 file-system sketch in action.
//
// Simulates a file-upload service: file contents arrive from the network
// as TCP segments, are adopted in place by PmFs (inodes whose extents are
// persistent packet metadata), survive a crash, and are served back via
// zero-copy frag-backed packets — sendfile without the file system /
// network boundary.
#include <cstdio>
#include <string>

#include "core/pmfs.h"
#include "net/gso.h"
#include "nic/nic.h"

using namespace papm;

namespace {
constexpr u32 kClientIp = 0x0a000001;
constexpr u32 kServerIp = 0x0a000002;
constexpr u16 kPort = 7000;
}  // namespace

int main() {
  sim::Env env;
  nic::Fabric fabric(env);

  // Server: PASTE-style PM-backed packet pool.
  constexpr u64 kPm = 64u << 20;
  pm::PmDevice dev(env, kPm);
  auto pmpool = pm::PmPool::create(dev, "pkts", dev.data_base(), kPm - 4096);
  pmpool.set_charges(env.cost.pool_alloc_ns, env.cost.pool_alloc_ns / 2);
  net::PmArena arena(dev, pmpool);
  net::PktBufPool spool(env, arena);
  nic::Nic snic(env, fabric, kServerIp, spool);
  net::TcpStack::Options so;
  so.ip = kServerIp;
  so.busy_poll = true;
  net::TcpStack sstack(env, snic, spool, so);
  snic.set_sink([&](net::PktBuf* pb) { sstack.rx(pb); });

  // Client: plain DRAM host.
  net::HeapArena carena(env);
  net::PktBufPool cpool(env, carena);
  nic::Nic cnic(env, fabric, kClientIp, cpool);
  net::TcpStack::Options co;
  co.ip = kClientIp;
  net::TcpStack cstack(env, cnic, cpool, co);
  cnic.set_sink([&](net::PktBuf* pb) { cstack.rx(pb); });

  auto fs = core::PmFs::create(spool, "uploads");

  // The server ingests every received segment chain as one file.
  int next_file = 0;
  (void)sstack.listen(kPort, [&](net::TcpConn& c) {
    c.on_readable = [&](net::TcpConn& cc) {
      auto pkts = cc.read_pkts();
      if (pkts.empty()) return;
      std::vector<u32> offs, lens;
      for (auto* pb : pkts) {
        offs.push_back(pb->payload_off);
        lens.push_back(pb->payload_len());
      }
      const std::string path = "/upload/" + std::to_string(next_file++);
      if (fs.ingest_file(path, pkts, offs, lens).ok()) {
        std::printf("  server: ingested %s (%llu bytes, %u extents)\n",
                    path.c_str(),
                    static_cast<unsigned long long>(fs.stat(path)->size),
                    fs.stat(path)->extents);
      }
      for (auto* pb : pkts) spool.free(pb);
    };
  });

  // Upload three "files".
  std::printf("uploading 3 files over TCP...\n");
  Rng rng(2026);
  std::vector<std::vector<u8>> originals;
  net::TcpConn* conn = cstack.connect(kServerIp, kPort);
  conn->on_established = [&](net::TcpConn& cc) {
    std::vector<u8> first(1200);
    for (auto& b : first) b = static_cast<u8>(rng.next());
    originals.push_back(first);
    (void)cc.send(first);
  };
  env.engine.run_until_idle();
  for (int i = 1; i < 3; i++) {
    std::vector<u8> data(400 + static_cast<std::size_t>(i) * 333);
    for (auto& b : data) b = static_cast<u8>(rng.next());
    originals.push_back(data);
    (void)conn->send(data);
    env.engine.run_until_idle();
  }

  std::printf("\nfiles on the server:\n");
  fs.list([&](std::string_view path, const core::PmFs::FileStat& st) {
    std::printf("  %-12s %6llu bytes  %u extent(s)  mtime(hw)=%lld ns\n",
                std::string(path).c_str(),
                static_cast<unsigned long long>(st.size), st.extents,
                static_cast<long long>(st.mtime));
    return true;
  });

  // Power loss, then recovery from the PM image alone.
  std::printf("\nsimulating power loss + recovery...\n");
  dev.crash();
  auto pmpool2 = pm::PmPool::recover(dev, "pkts");
  net::PmArena arena2(dev, pmpool2.value());
  net::PktBufPool spool2(env, arena2);
  auto rec = core::PmFs::recover(spool2, "uploads");
  if (!rec.ok()) {
    std::fprintf(stderr, "recovery failed!\n");
    return 1;
  }
  std::printf("recovered %zu file(s); verifying contents...\n",
              rec->file_count());
  bool all_ok = true;
  for (std::size_t i = 0; i < originals.size(); i++) {
    const std::string path = "/upload/" + std::to_string(i);
    const bool csum_ok = rec->verify(path).ok();
    const bool bytes_ok = rec->read_file(path).value_or({}) == originals[i];
    std::printf("  %s: checksum %s, bytes %s\n", path.c_str(),
                csum_ok ? "ok" : "BAD", bytes_ok ? "match" : "MISMATCH");
    all_ok = all_ok && csum_ok && bytes_ok;
  }

  // Zero-copy emission (the sendfile path).
  auto pkts = rec->emit_pkts("/upload/0");
  std::printf("\nemit_pkts(\"/upload/0\"): %zu TX-ready packet(s), "
              "value rides as frags (no copy)\n",
              pkts->size());
  for (auto* pb : pkts.value()) spool2.free(pb);

  std::printf("\n%s\n", all_ok ? "all files intact." : "DATA LOSS DETECTED");
  return all_ok ? 0 : 1;
}
