// Quickstart: the packet-metadata store in five minutes.
//
// Shows the core API without any networking: create a PM device, build a
// PktStore over a PM-backed packet pool, put/get/stat values, survive a
// crash, and verify integrity — the storage properties of §4.2 (checksum,
// timestamp, search, durability) in one sitting.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "core/pktstore.h"

using namespace papm;

int main() {
  // A simulation environment: virtual clock + calibrated cost model.
  // Every operation reports how long it *would* take on the paper's
  // Optane + 25 GbE testbed.
  sim::Env env;

  // A 64 MiB persistent-memory device and a pool over it. The pool is
  // priced like a network buffer allocator (freelist pops) because that
  // is the §4.2 design: one allocator for packets, metadata and index.
  constexpr u64 kPm = 64u << 20;
  pm::PmDevice dev(env, kPm);
  auto pmpool = pm::PmPool::create(dev, "pkts", dev.data_base(), kPm - 4096);
  pmpool.set_charges(env.cost.pool_alloc_ns, env.cost.pool_alloc_ns / 2);

  // The packet pool: packet data and metadata live in PM (PASTE-style).
  net::PmArena arena(dev, pmpool);
  net::PktBufPool pktpool(env, arena);

  // The store itself.
  auto store = core::PktStore::create(pktpool, "quickstart");

  // --- Put / get ------------------------------------------------------
  const std::string value = "hello, persistent packets!";
  const SimTime t0 = env.now();
  if (!store
           .put_bytes("greeting",
                      {reinterpret_cast<const u8*>(value.data()), value.size()})
           .ok()) {
    std::fprintf(stderr, "put failed\n");
    return 1;
  }
  std::printf("put_bytes(\"greeting\") charged %lld ns of simulated time\n",
              static_cast<long long>(env.now() - t0));

  auto got = store.get("greeting");
  std::printf("get -> \"%s\"\n",
              std::string(got->begin(), got->end()).c_str());

  // --- Metadata: what the packet gave us for free ----------------------
  const auto meta = store.stat("greeting");
  std::printf("stat: len=%llu segments=%u csum_kind=%s\n",
              static_cast<unsigned long long>(meta->len), meta->segments,
              meta->csum_kind == core::CsumKind::inet16 ? "inet16 (reused)"
                                                        : "crc32c");

  // --- Integrity -------------------------------------------------------
  std::printf("verify: %s\n", store.verify("greeting").ok() ? "ok" : "CORRUPT");

  // --- Crash and recover ----------------------------------------------
  std::printf("\nsimulating power loss...\n");
  dev.crash();

  auto pmpool2 = pm::PmPool::recover(dev, "pkts");
  net::PmArena arena2(dev, pmpool2.value());
  net::PktBufPool pktpool2(env, arena2);
  auto recovered = core::PktStore::recover(pktpool2, "quickstart");
  if (!recovered.ok()) {
    std::fprintf(stderr, "recovery failed\n");
    return 1;
  }
  auto after = recovered->get("greeting");
  std::printf("after recovery: get -> \"%s\" (verify: %s)\n",
              std::string(after->begin(), after->end()).c_str(),
              recovered->verify("greeting").ok() ? "ok" : "CORRUPT");
  std::printf("store size: %zu key(s)\n", recovered->size());
  return 0;
}
