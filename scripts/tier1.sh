#!/usr/bin/env bash
# Tier-1 verification: the plain build + test pass from ROADMAP.md,
# followed by a second ctest pass under ASan+UBSan (-DPAPM_SANITIZE=ON).
# Run from the repository root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: default build =="
cmake --preset default >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j

echo "== tier-1: ASan+UBSan build =="
cmake --preset asan >/dev/null
cmake --build build-asan -j
ctest --test-dir build-asan --output-on-failure -j

echo "== tier-1: OK =="
