#!/usr/bin/env bash
# Tier-1 verification: the plain build + test pass from ROADMAP.md,
# a second ctest pass under ASan+UBSan (-DPAPM_SANITIZE=ON), a third
# pass re-running the crash-point sweep suite under the sanitizers with
# the exhaustive (scaled-up) workloads, a fourth build+test pass with
# observability compiled out (-DPAPM_OBS=OFF) proving the kill switch
# leaves the tree buildable and the tests green, and a fifth pass with
# group commit compiled out (-DPAPM_GROUP_COMMIT=OFF) keeping the legacy
# fence-per-op persistence path built and crash-tested, a sixth pass
# with the NIC slicer compiled out (-DPAPM_SLICER=OFF) proving the
# pre-slicer RX path still builds and tests green, and a seventh pass
# with replication compiled out (-DPAPM_REPL=OFF) proving the norepl
# datapath builds, tests green, and produces bit-identical bench records
# (the OFF build is not a perf fork). Also lints the docs (every bench
# binary must have an EXPERIMENTS.md section; every registered metric an
# entry in docs/OBSERVABILITY.md), and verifies the telemetry plane:
# an armed-but-unscraped admin plane is byte-identical to the baseline,
# a scraped one stays under the 1%-of-p99 overhead budget, the
# flight-recorder crash sweep loses no acked record and recovers no
# phantom, and the PAPM_OBS=OFF build compiles the whole plane out
# bit-identically even with every plane flag raised.
# Run from the repository root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: docs lint =="
scripts/check_docs.sh

echo "== tier-1: default build =="
cmake --preset default >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j

echo "== tier-1: open-loop smoke + determinism (byte-identical reruns) =="
build/bench/bench_openloop --conns 1000 --seconds 1 --json build/openloop_a.json
build/bench/bench_openloop --conns 1000 --seconds 1 --json build/openloop_b.json
cmp build/openloop_a.json build/openloop_b.json
echo "bench_openloop: reruns byte-identical"

echo "== tier-1: slicer smoke + determinism (byte-identical reruns) =="
build/bench/bench_slicer --quick --json build/slicer_a.json
build/bench/bench_slicer --quick --json build/slicer_b.json
cmp build/slicer_a.json build/slicer_b.json
echo "bench_slicer: reruns byte-identical"

echo "== tier-1: repl smoke + determinism (byte-identical reruns) =="
build/bench/bench_repl --quick --json build/repl_a.json
build/bench/bench_repl --quick --json build/repl_b.json
cmp build/repl_a.json build/repl_b.json
echo "bench_repl: reruns byte-identical (and zero acked writes lost)"

echo "== tier-1: admin plane armed-but-unscraped is free (byte-identity) =="
# An --admin run must be bit-identical to the baseline: the endpoint
# branch only runs for admin targets, so arming the plane costs zero
# simulated time. Only the recorded flag itself may differ.
build/bench/bench_openloop --conns 1000 --seconds 1 --admin --json build/openloop_admin.json
sed 's/"admin": 1/"admin": 0/' build/openloop_admin.json | cmp - build/openloop_a.json
echo "bench_openloop: --admin run bit-identical to baseline"

echo "== tier-1: admin overhead budget (<1% of p99, scraped at 500 Hz) =="
build/bench/bench_openloop --admin-overhead --seconds 0.1
echo "bench_openloop: admin overhead within budget"

echo "== tier-1: flight-recorder crash sweep (acked prefix, no phantoms) =="
build/bench/bench_recovery --flightrec --json build/flightrec_a.json
build/bench/bench_recovery --flightrec --json build/flightrec_b.json
cmp build/flightrec_a.json build/flightrec_b.json
echo "bench_recovery: flightrec sweep clean and byte-identical"

echo "== tier-1: ASan+UBSan build =="
cmake --preset asan >/dev/null
cmake --build build-asan -j
ctest --test-dir build-asan --output-on-failure -j

echo "== tier-1: exhaustive crash-point sweep (ASan+UBSan) =="
PAPM_CRASH_EXHAUSTIVE=1 \
  ctest --test-dir build-asan -R test_crash_recovery --output-on-failure

echo "== tier-1: PAPM_OBS=OFF build (kill switch) =="
cmake --preset noobs >/dev/null
cmake --build build-noobs -j
ctest --test-dir build-noobs --output-on-failure -j
# The whole telemetry plane compiles out: an OBS=OFF run with every
# plane flag raised must be bit-identical to the default baseline —
# modulo the metadata fields that record the build and the flags.
build-noobs/bench/bench_openloop --conns 1000 --seconds 1 --admin --flightrec \
  --json build/openloop_noobs.json
sed -e 's/"obs": "off"/"obs": "on"/' \
    -e 's/"admin": 1/"admin": 0/' \
    -e 's/"flightrec": 1/"flightrec": 0/' build/openloop_noobs.json \
  | cmp - build/openloop_a.json
echo "bench_openloop: PAPM_OBS=OFF telemetry plane compiled out bit-identically"

echo "== tier-1: PAPM_GROUP_COMMIT=OFF build (legacy fence-per-op path) =="
cmake --preset nogc >/dev/null
cmake --build build-nogc -j
ctest --test-dir build-nogc --output-on-failure -j

echo "== tier-1: PAPM_SLICER=OFF build (pre-slicer RX path) =="
cmake --preset noslicer >/dev/null
cmake --build build-noslicer -j
ctest --test-dir build-noslicer --output-on-failure -j

echo "== tier-1: PAPM_REPL=OFF build (replication kill switch) =="
cmake --preset norepl >/dev/null
cmake --build build-norepl -j
ctest --test-dir build-norepl --output-on-failure -j
# With no Replicator attached the datapath must be bit-identical either
# way: the same recorded bench run from both builds, compared bytewise.
build/bench/bench_openloop --conns 1000 --seconds 1 --json build/openloop_repl_on.json
build-norepl/bench/bench_openloop --conns 1000 --seconds 1 --json build/openloop_repl_off.json
cmp build/openloop_repl_on.json build/openloop_repl_off.json
echo "bench_openloop: PAPM_REPL=ON/OFF builds bit-identical"

echo "== tier-1: OK =="
