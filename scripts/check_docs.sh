#!/usr/bin/env bash
# Docs lint:
#   1. every bench binary must be documented — fails if a
#      bench/bench_*.cpp exists whose name (e.g. "bench_recovery") never
#      appears in EXPERIMENTS.md;
#   2. every registered metric must be documented — fails if a metric
#      name registered in src/ (counter("...") / gauge("...") /
#      histogram("...") — always string literals by convention, see
#      src/obs/metrics.h) never appears in docs/OBSERVABILITY.md;
#   3. every bench binary must have a section in docs/BENCHMARKS.md, and
#      every JSON field a bench emits (w.field("...") — string literals
#      by convention, see bench/bench_json.h) must be documented there;
#   4. every trace stage name (the to_string cases in src/obs/trace.h)
#      must appear in docs/OBSERVABILITY.md — the attribution tables are
#      unreadable when a stage label has no definition.
# Run from anywhere.
set -euo pipefail

cd "$(dirname "$0")/.."

missing=0
for src in bench/bench_*.cpp; do
  name="$(basename "$src" .cpp)"
  if ! grep -q "$name" EXPERIMENTS.md; then
    echo "check_docs: $src has no matching section in EXPERIMENTS.md" >&2
    missing=1
  fi
done

for src in bench/bench_*.cpp; do
  name="$(basename "$src" .cpp)"
  if ! grep -q "$name" docs/BENCHMARKS.md; then
    echo "check_docs: $src has no matching section in docs/BENCHMARKS.md" >&2
    missing=1
  fi
done

# JSON fields the benches emit (string literals at the w.field sites,
# including the shared metadata/flush helpers in bench_json.h). Any field
# a --json file can contain must be documented in docs/BENCHMARKS.md.
fields="$(grep -rhoE 'field\("[^"]+"' bench/ \
  | sed -E 's/field\("([^"]+)".*/\1/' | sort -u)"
for f in $fields; do
  if ! grep -qF "\`$f\`" docs/BENCHMARKS.md; then
    echo "check_docs: JSON field '$f' is not documented in docs/BENCHMARKS.md" >&2
    missing=1
  fi
done

# Trace stage names (the to_string cases in src/obs/trace.h).
stages="$(grep -oE 'case Stage::[a-z_]+: return "[^"]+"' src/obs/trace.h \
  | sed -E 's/.*return "([^"]+)".*/\1/' | sort -u)"
for s in $stages; do
  if ! grep -qF "\`$s\`" docs/OBSERVABILITY.md; then
    echo "check_docs: trace stage '$s' is not documented in docs/OBSERVABILITY.md" >&2
    missing=1
  fi
done

# Registered metric names (string literals at the registration sites).
metrics="$(grep -rhoE '(counter|gauge|histogram)\("[^"]+"\)' src/ \
  | sed -E 's/.*\("([^"]+)"\).*/\1/' | sort -u)"
for m in $metrics; do
  if ! grep -qF "$m" docs/OBSERVABILITY.md; then
    echo "check_docs: metric '$m' is not documented in docs/OBSERVABILITY.md" >&2
    missing=1
  fi
done

# Every name /metrics exposes must be documented under its Prometheus
# spelling too: "papm_" + the registry name with every non-alphanumeric
# byte replaced by '_' (src/obs/export.cpp prometheus_name). A dashboard
# built against /metrics greps for these, not the registry names.
for m in $metrics; do
  p="papm_$(printf '%s' "$m" | sed -E 's/[^a-zA-Z0-9]/_/g')"
  if ! grep -qF "$p" docs/OBSERVABILITY.md; then
    echo "check_docs: /metrics name '$p' (registry name '$m') is not documented in docs/OBSERVABILITY.md" >&2
    missing=1
  fi
done

if [ "$missing" -ne 0 ]; then
  echo "check_docs: FAILED" >&2
  exit 1
fi
echo "check_docs: OK (all benches, JSON fields and metrics documented)"
