#!/usr/bin/env bash
# Docs lint:
#   1. every bench binary must be documented — fails if a
#      bench/bench_*.cpp exists whose name (e.g. "bench_recovery") never
#      appears in EXPERIMENTS.md;
#   2. every registered metric must be documented — fails if a metric
#      name registered in src/ (counter("...") / gauge("...") /
#      histogram("...") — always string literals by convention, see
#      src/obs/metrics.h) never appears in docs/OBSERVABILITY.md.
# Run from anywhere.
set -euo pipefail

cd "$(dirname "$0")/.."

missing=0
for src in bench/bench_*.cpp; do
  name="$(basename "$src" .cpp)"
  if ! grep -q "$name" EXPERIMENTS.md; then
    echo "check_docs: $src has no matching section in EXPERIMENTS.md" >&2
    missing=1
  fi
done

# Registered metric names (string literals at the registration sites).
metrics="$(grep -rhoE '(counter|gauge|histogram)\("[^"]+"\)' src/ \
  | sed -E 's/.*\("([^"]+)"\).*/\1/' | sort -u)"
for m in $metrics; do
  if ! grep -qF "$m" docs/OBSERVABILITY.md; then
    echo "check_docs: metric '$m' is not documented in docs/OBSERVABILITY.md" >&2
    missing=1
  fi
done

if [ "$missing" -ne 0 ]; then
  echo "check_docs: FAILED" >&2
  exit 1
fi
echo "check_docs: OK (all benches and metrics documented)"
