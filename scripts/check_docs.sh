#!/usr/bin/env bash
# Docs lint: every bench binary must be documented.
#
# Fails if a bench/bench_*.cpp exists whose name (e.g. "bench_recovery")
# never appears in EXPERIMENTS.md — benches without a documented
# experiment section silently rot. Run from anywhere.
set -euo pipefail

cd "$(dirname "$0")/.."

missing=0
for src in bench/bench_*.cpp; do
  name="$(basename "$src" .cpp)"
  if ! grep -q "$name" EXPERIMENTS.md; then
    echo "check_docs: $src has no matching section in EXPERIMENTS.md" >&2
    missing=1
  fi
done

if [ "$missing" -ne 0 ]; then
  echo "check_docs: FAILED" >&2
  exit 1
fi
echo "check_docs: OK (all benches documented)"
